type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else begin
    (* Shortest representation that still contains a marker making it a
       JSON number (a bare "1" is fine too — Int covers that case). *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let error c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))
let eof c = c.pos >= String.length c.s
let peek c = c.s.[c.pos]

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    (not (eof c))
    && match peek c with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance c
  done

let expect c ch =
  if eof c || peek c <> ch then error c (Printf.sprintf "expected '%c'" ch);
  advance c

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.equal (String.sub c.s c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected '%s'" word)

let utf8_of_code buf u =
  (* Good enough for \uXXXX escapes (BMP only, surrogates re-encoded as
     replacement characters rather than rejected). *)
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if eof c then error c "unterminated string";
    match peek c with
    | '"' -> advance c
    | '\\' ->
      advance c;
      if eof c then error c "unterminated escape";
      (match peek c with
      | '"' -> Buffer.add_char buf '"'; advance c
      | '\\' -> Buffer.add_char buf '\\'; advance c
      | '/' -> Buffer.add_char buf '/'; advance c
      | 'b' -> Buffer.add_char buf '\b'; advance c
      | 'f' -> Buffer.add_char buf '\012'; advance c
      | 'n' -> Buffer.add_char buf '\n'; advance c
      | 'r' -> Buffer.add_char buf '\r'; advance c
      | 't' -> Buffer.add_char buf '\t'; advance c
      | 'u' ->
        advance c;
        if c.pos + 4 > String.length c.s then error c "truncated \\u escape";
        let hex = String.sub c.s c.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | None -> error c "bad \\u escape"
        | Some u ->
          c.pos <- c.pos + 4;
          utf8_of_code buf u)
      | _ -> error c "bad escape");
      go ()
    | ch when Char.code ch < 0x20 -> error c "raw control character in string"
    | ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (not (eof c)) && is_num_char (peek c) do
    advance c
  done;
  let text = String.sub c.s start (c.pos - start) in
  let has_frac =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text
  in
  if has_frac then begin
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error c "bad number"
  end
  else begin
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error c "bad number")
  end

let rec parse_value c =
  skip_ws c;
  if eof c then error c "unexpected end of input";
  match peek c with
  | 'n' -> literal c "null" Null
  | 't' -> literal c "true" (Bool true)
  | 'f' -> literal c "false" (Bool false)
  | '"' -> Str (parse_string c)
  | '[' ->
    advance c;
    skip_ws c;
    if (not (eof c)) && peek c = ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        if eof c then error c "unterminated array";
        match peek c with
        | ',' ->
          advance c;
          items (v :: acc)
        | ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      Arr (items [])
    end
  | '{' ->
    advance c;
    skip_ws c;
    if (not (eof c)) && peek c = '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        if eof c then error c "unterminated object";
        match peek c with
        | ',' ->
          advance c;
          fields (kv :: acc)
        | '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | '-' | '0' .. '9' -> parse_number c
  | _ -> error c "unexpected character"

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if eof c then Ok v else Error (Printf.sprintf "trailing data at offset %d" c.pos)
  | exception Bad msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function Arr items -> items | _ -> []
