(** Fixed-bucket histograms with per-domain cells.

    Bucket bounds are fixed at creation ([observe] is a short linear
    scan — bound counts are small by design); each domain owns a
    private (counts, sum, count) cell, merged at read time. *)

type t

type snapshot = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (** cumulative-free per-bucket counts, paired with the bucket's
          inclusive upper bound; the final bucket's bound is
          [infinity]. *)
}

val make : ?help:string -> bounds:float list -> string -> t
(** [make ~bounds name]: [bounds] are the finite upper bounds, strictly
    ascending; an implicit [+inf] bucket is appended. Idempotent by
    name (the first registration's bounds win). Raises
    [Invalid_argument] on empty or non-ascending bounds. *)

val exponential_bounds : lo:float -> factor:float -> n:int -> float list
(** [lo, lo*factor, lo*factor^2, …] — [n] bounds for latency-style
    histograms. *)

val observe : t -> float -> unit

val snapshot : t -> snapshot
(** Merged view across all domains. *)

val name : t -> string
val help : t -> string

val all : unit -> t list
(** Sorted by name. *)
