(** Fixed-bucket histograms with per-domain cells.

    Bucket bounds are fixed at creation ([observe] is a short linear
    scan — bound counts are small by design); each domain owns a
    private (counts, sum, count) cell, merged at read time. *)

type t

type snapshot = {
  count : int;
  sum : float;
  max : float;  (** largest observed value; [0.] when [count = 0] *)
  buckets : (float * int) list;
      (** cumulative-free per-bucket counts, paired with the bucket's
          inclusive upper bound; the final bucket's bound is
          [infinity]. *)
}

val make : ?help:string -> bounds:float list -> string -> t
(** [make ~bounds name]: [bounds] are the finite upper bounds, strictly
    ascending; an implicit [+inf] bucket is appended. Idempotent by
    name (the first registration's bounds win). Raises
    [Invalid_argument] on empty or non-ascending bounds. *)

val exponential_bounds : lo:float -> factor:float -> n:int -> float list
(** [lo, lo*factor, lo*factor^2, …] — [n] bounds for latency-style
    histograms. *)

val observe : t -> float -> unit

val time : t -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] and observes its {!Clock} wall-clock in [h]
    (also on exception, before re-raising). With the registry disabled
    this is [f ()] behind one branch — no clock reads. *)

val snapshot : t -> snapshot
(** Merged view across all domains. *)

val quantile : snapshot -> float -> float
(** [quantile s q] estimates the [q]-quantile ([0. <= q <= 1.]) from
    the bucket counts: the bucket holding the rank-⌈q·count⌉
    observation is found by a cumulative walk and the value linearly
    interpolated inside its bounds. The estimate always falls in the
    same bucket as the exact order statistic (the interpolation can
    only be off within one bucket width), the top bucket is clamped to
    the tracked {!snapshot.max}, and [quantile s 1. = s.max] given the
    clamp. [0.] when the snapshot is empty. *)

val name : t -> string
val help : t -> string

val all : unit -> t list
(** Sorted by name. *)
