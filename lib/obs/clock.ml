let real = Unix.gettimeofday

let source : (unit -> float) Atomic.t = Atomic.make real

(* Fault-injection support: an additive offset applied on top of the
   current source. A plain [Atomic.t] of float; updates CAS-loop since
   there is no float fetch_and_add. *)
let offset : float Atomic.t = Atomic.make 0.

let now () = (Atomic.get source) () +. Atomic.get offset
let set f = Atomic.set source f

let reset () =
  Atomic.set source real;
  Atomic.set offset 0.

let skew d =
  let rec go () =
    let cur = Atomic.get offset in
    if not (Atomic.compare_and_set offset cur (cur +. d)) then go ()
  in
  go ()

let skew_total () = Atomic.get offset

let deterministic ?(start = 0.) ?(step = 1e-3) () =
  let k = Atomic.make 0 in
  fun () -> start +. (float_of_int (Atomic.fetch_and_add k 1) *. step)
