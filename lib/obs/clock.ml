let real = Unix.gettimeofday

let source : (unit -> float) Atomic.t = Atomic.make real

let now () = (Atomic.get source) ()
let set f = Atomic.set source f
let reset () = Atomic.set source real

let deterministic ?(start = 0.) ?(step = 1e-3) () =
  let k = Atomic.make 0 in
  fun () -> start +. (float_of_int (Atomic.fetch_and_add k 1) *. step)
