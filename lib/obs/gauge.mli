(** Last-write-wins gauges (point-in-time values: queue depths, sizes).

    Gauges are low-frequency, so one atomic cell is enough — no
    sharding. Disabled registry: one branch, no write. *)

type t

val make : ?help:string -> string -> t
(** Idempotent by name, like {!Counter.make}. *)

val set : t -> float -> unit
val set_int : t -> int -> unit
val value : t -> float
val name : t -> string
val help : t -> string

val all : unit -> t list
(** Sorted by name. *)
