let flag = Atomic.make false

let enabled () = Atomic.get flag
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false

let with_enabled f =
  let was = Atomic.get flag in
  Atomic.set flag true;
  Fun.protect ~finally:(fun () -> Atomic.set flag was) f

let hooks : (unit -> unit) list ref = ref []
let mu = Mutex.create ()

let on_reset f =
  Mutex.lock mu;
  hooks := f :: !hooks;
  Mutex.unlock mu

let reset () =
  Mutex.lock mu;
  let hs = !hooks in
  Mutex.unlock mu;
  List.iter (fun f -> f ()) hs
