type phase = Complete | Instant

type event = {
  name : string;
  cat : string;
  tid : int;
  ts : float;
  dur : float;
  depth : int;
  phase : phase;
  args : (string * string) list;
  seq : int;
}

type cell = {
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable dropped : int;
  mutable depth : int;
  mutable seq : int;
}

let limit = Atomic.make 200_000
let set_buffer_limit n = Atomic.set limit (max 0 n)
let buffer_limit () = Atomic.get limit

let buffers : cell Sharded.t =
  Sharded.create (fun () ->
      { events = []; count = 0; dropped = 0; depth = 0; seq = 0 })

let () =
  Registry.on_reset (fun () ->
      Sharded.iter buffers ~f:(fun c ->
          c.events <- [];
          c.count <- 0;
          c.dropped <- 0;
          c.seq <- 0))

let self_tid () = (Domain.self () :> int)

let push c ev =
  if c.count >= Atomic.get limit then c.dropped <- c.dropped + 1
  else begin
    c.events <- ev :: c.events;
    c.count <- c.count + 1
  end

let next_seq c =
  let s = c.seq in
  c.seq <- s + 1;
  s

let instant ?(cat = "") ?(args = []) name =
  if Registry.enabled () then begin
    let c = Sharded.get buffers in
    push c
      {
        name;
        cat;
        tid = self_tid ();
        ts = Clock.now ();
        dur = 0.;
        depth = c.depth;
        phase = Instant;
        args;
        seq = next_seq c;
      }
  end

let with_span ?(cat = "") ?(args = []) name f =
  if not (Registry.enabled ()) then f ()
  else begin
    let c = Sharded.get buffers in
    let depth = c.depth in
    c.depth <- depth + 1;
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now () in
        c.depth <- depth;
        push c
          {
            name;
            cat;
            tid = self_tid ();
            ts = t0;
            dur = Float.max 0. (t1 -. t0);
            depth;
            phase = Complete;
            args;
            seq = next_seq c;
          })
      f
  end

let events () =
  let all =
    Sharded.fold buffers ~init:[] ~f:(fun acc c -> List.rev_append c.events acc)
  in
  List.sort
    (fun a b ->
      match Float.compare a.ts b.ts with
      | 0 -> (
        match Int.compare a.tid b.tid with
        | 0 -> Int.compare a.seq b.seq
        | c -> c)
      | c -> c)
    all

let dropped () = Sharded.fold buffers ~init:0 ~f:(fun acc c -> acc + c.dropped)
