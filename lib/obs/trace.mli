(** Span-based tracing with per-domain buffers.

    {!with_span} brackets a computation with two clock reads and
    appends one event to the {e calling domain's} private buffer
    (never contended — see {!Sharded}); buffers merge only at export.
    Because the recording domain is the executing domain, every event
    carries the true domain id, which is what gives the Chrome-trace
    export one lane ([tid]) per domain — the prover pool's per-domain
    task timeline falls out for free.

    Disabled registry: [with_span _ f] is [f ()] behind one branch. *)

type phase = Complete | Instant

type event = {
  name : string;
  cat : string;  (** coarse grouping: "pool", "snark", "latus", … *)
  tid : int;  (** the recording domain's id *)
  ts : float;  (** {!Clock.now} at span start, seconds *)
  dur : float;  (** span duration in seconds; [0.] for instants *)
  depth : int;  (** span nesting depth within the recording domain *)
  phase : phase;
  args : (string * string) list;
  seq : int;  (** per-domain sequence number (stable ordering) *)
}

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] and records one [Complete] event
    (also on exception, before re-raising). Spans nest freely,
    including across {!Pool}-style helper domains — each domain tracks
    its own depth. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration point event. *)

val events : unit -> event list
(** All buffered events, merged across domains and sorted by
    [(ts, tid, seq)]. *)

val dropped : unit -> int
(** Events discarded because a domain's buffer hit {!set_buffer_limit};
    exporters surface this so truncation is never silent. *)

val set_buffer_limit : int -> unit
(** Per-domain event cap (default 200_000). Recording past the cap
    drops the new event and counts it in {!dropped}. *)

val buffer_limit : unit -> int
(** The current per-domain cap — exporters quote it next to
    {!dropped} so a truncated report says how to raise the ceiling. *)
