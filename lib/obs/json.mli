(** A minimal JSON document type with a printer and a strict parser.

    Zero dependencies: this is what lets the exporters emit valid JSON
    (the printer handles escaping and non-finite floats) and what lets
    the tests and CI validate exporter output without pulling in a JSON
    library. Not a streaming parser — documents are built in memory. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). Strings are
    escaped per RFC 8259; non-finite floats render as [null] (JSON has
    no representation for them). *)

val of_string : string -> (t, string) result
(** Strict RFC 8259 parser: exactly one value, trailing whitespace
    allowed, no trailing commas or comments. Numbers without [.], [e]
    or [E] that fit an OCaml [int] parse as [Int], everything else as
    [Float]. [\uXXXX] escapes are decoded to UTF-8. *)

val member : string -> t -> t option
(** [member k (Obj _)] looks up the first binding of [k]; [None] on
    missing keys and non-objects. *)

val to_list : t -> t list
(** Elements of an [Arr]; [[]] for any other constructor. *)
