(** The three exporters over the merged registry state.

    All three are read-only merges of the per-domain buffers; none of
    them mutates or stops recording. *)

type span_stat = {
  span_name : string;
  span_count : int;
  total_s : float;
  min_s : float;
  max_s : float;
}

val span_stats : unit -> span_stat list
(** Per-span-name aggregates over all [Complete] trace events, sorted
    by name. *)

val summary : unit -> string
(** Human-readable tables: counters, gauges, histograms, span
    aggregates, and a truncation warning if any trace events were
    dropped. This is what [zendoo-cli --metrics] prints at exit. *)

val json : unit -> Json.t
(** The stable machine-readable document (schema ["zen-obs/1"]):
    {v
    { "schema": "zen-obs/1",
      "counters":   [{"name", "value"}],
      "gauges":     [{"name", "value"}],
      "histograms": [{"name", "count", "sum",
                      "buckets": [{"le", "count"}]}],   // le: number | "+inf"
      "spans":      [{"name", "count", "total_s", "min_s", "max_s"}],
      "trace": {"events": int, "dropped": int} }
    v} *)

val json_string : unit -> string

val chrome_trace : unit -> string
(** Chrome trace-event format (the JSON-object form with a
    ["traceEvents"] array) loadable in [chrome://tracing] or Perfetto.
    Spans become ["ph":"X"] complete events and instants ["ph":"i"],
    with [ts]/[dur] in microseconds relative to the earliest event,
    [pid] 1 and [tid] = recording domain id, plus one thread-name
    metadata record per domain so lanes are labelled. *)
