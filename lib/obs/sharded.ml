type 'a t = {
  key : 'a Domain.DLS.key;
  cells : 'a list ref;
  mu : Mutex.t;
}

let create make =
  let cells = ref [] in
  let mu = Mutex.create () in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = make () in
        Mutex.lock mu;
        cells := c :: !cells;
        Mutex.unlock mu;
        c)
  in
  { key; cells; mu }

let get t = Domain.DLS.get t.key

let fold t ~init ~f =
  Mutex.lock t.mu;
  let cs = !(t.cells) in
  Mutex.unlock t.mu;
  List.fold_left f init cs

let iter t ~f = fold t ~init:() ~f:(fun () c -> f c)
