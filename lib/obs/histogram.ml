type cell = { counts : int array; mutable sum : float; mutable count : int }

type t = {
  name : string;
  help : string;
  bounds : float array; (* finite upper bounds, ascending *)
  cells : cell Sharded.t;
}

type snapshot = { count : int; sum : float; buckets : (float * int) list }

let registered : t list ref = ref []
let mu = Mutex.create ()

let exponential_bounds ~lo ~factor ~n =
  if n < 1 || lo <= 0. || factor <= 1. then
    invalid_arg "Histogram.exponential_bounds";
  List.init n (fun i -> lo *. (factor ** float_of_int i))

let make ?(help = "") ~bounds name =
  let bounds = Array.of_list bounds in
  if Array.length bounds = 0 then invalid_arg "Histogram.make: no bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Histogram.make: bounds must ascend")
    bounds;
  Mutex.lock mu;
  match List.find_opt (fun h -> String.equal h.name name) !registered with
  | Some h ->
    Mutex.unlock mu;
    h
  | None ->
    let nbuckets = Array.length bounds + 1 in
    let h =
      {
        name;
        help;
        bounds;
        cells =
          Sharded.create (fun () ->
              { counts = Array.make nbuckets 0; sum = 0.; count = 0 });
      }
    in
    registered := h :: !registered;
    Mutex.unlock mu;
    Registry.on_reset (fun () ->
        Sharded.iter h.cells ~f:(fun c ->
            Array.fill c.counts 0 (Array.length c.counts) 0;
            c.sum <- 0.;
            c.count <- 0));
    h

let bucket_of t v =
  let n = Array.length t.bounds in
  let rec go i = if i >= n || v <= t.bounds.(i) then i else go (i + 1) in
  go 0

let observe t v =
  if Registry.enabled () then begin
    let c = Sharded.get t.cells in
    let b = bucket_of t v in
    c.counts.(b) <- c.counts.(b) + 1;
    c.sum <- c.sum +. v;
    c.count <- c.count + 1
  end

let snapshot t =
  let nbuckets = Array.length t.bounds + 1 in
  let counts = Array.make nbuckets 0 in
  let sum = ref 0. and count = ref 0 in
  Sharded.iter t.cells ~f:(fun c ->
      Array.iteri (fun i n -> counts.(i) <- counts.(i) + n) c.counts;
      sum := !sum +. c.sum;
      count := !count + c.count);
  let buckets =
    List.init nbuckets (fun i ->
        let le = if i < Array.length t.bounds then t.bounds.(i) else infinity in
        (le, counts.(i)))
  in
  { count = !count; sum = !sum; buckets }

let name t = t.name
let help t = t.help

let all () =
  Mutex.lock mu;
  let hs = !registered in
  Mutex.unlock mu;
  List.sort (fun a b -> String.compare a.name b.name) hs
