type cell = {
  counts : int array;
  mutable sum : float;
  mutable count : int;
  mutable maxv : float;
}

type t = {
  name : string;
  help : string;
  bounds : float array; (* finite upper bounds, ascending *)
  cells : cell Sharded.t;
}

type snapshot = {
  count : int;
  sum : float;
  max : float;
  buckets : (float * int) list;
}

let registered : t list ref = ref []
let mu = Mutex.create ()

let exponential_bounds ~lo ~factor ~n =
  if n < 1 || lo <= 0. || factor <= 1. then
    invalid_arg "Histogram.exponential_bounds";
  List.init n (fun i -> lo *. (factor ** float_of_int i))

let make ?(help = "") ~bounds name =
  let bounds = Array.of_list bounds in
  if Array.length bounds = 0 then invalid_arg "Histogram.make: no bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Histogram.make: bounds must ascend")
    bounds;
  Mutex.lock mu;
  match List.find_opt (fun h -> String.equal h.name name) !registered with
  | Some h ->
    Mutex.unlock mu;
    h
  | None ->
    let nbuckets = Array.length bounds + 1 in
    let h =
      {
        name;
        help;
        bounds;
        cells =
          Sharded.create (fun () ->
              {
                counts = Array.make nbuckets 0;
                sum = 0.;
                count = 0;
                maxv = neg_infinity;
              });
      }
    in
    registered := h :: !registered;
    Mutex.unlock mu;
    Registry.on_reset (fun () ->
        Sharded.iter h.cells ~f:(fun c ->
            Array.fill c.counts 0 (Array.length c.counts) 0;
            c.sum <- 0.;
            c.count <- 0;
            c.maxv <- neg_infinity));
    h

let bucket_of t v =
  let n = Array.length t.bounds in
  let rec go i = if i >= n || v <= t.bounds.(i) then i else go (i + 1) in
  go 0

let observe t v =
  if Registry.enabled () then begin
    let c = Sharded.get t.cells in
    let b = bucket_of t v in
    c.counts.(b) <- c.counts.(b) + 1;
    c.sum <- c.sum +. v;
    c.count <- c.count + 1;
    if v > c.maxv then c.maxv <- v
  end

let time t f =
  if not (Registry.enabled ()) then f ()
  else begin
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () -> observe t (Float.max 0. (Clock.now () -. t0)))
      f
  end

let snapshot t =
  let nbuckets = Array.length t.bounds + 1 in
  let counts = Array.make nbuckets 0 in
  let sum = ref 0. and count = ref 0 and maxv = ref neg_infinity in
  Sharded.iter t.cells ~f:(fun c ->
      Array.iteri (fun i n -> counts.(i) <- counts.(i) + n) c.counts;
      sum := !sum +. c.sum;
      count := !count + c.count;
      if c.maxv > !maxv then maxv := c.maxv);
  let buckets =
    List.init nbuckets (fun i ->
        let le = if i < Array.length t.bounds then t.bounds.(i) else infinity in
        (le, counts.(i)))
  in
  { count = !count; sum = !sum; max = (if !count = 0 then 0. else !maxv); buckets }

(* The estimated q-quantile: find the bucket holding the rank-⌈q·count⌉
   observation by a cumulative walk, then interpolate linearly inside
   it. The walk and the exact order statistic land in the same bucket
   by construction, so the estimate is always within one bucket width
   of the truth (and the +inf bucket is clamped to the tracked max). *)
let quantile s q =
  if s.count = 0 then 0.
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int s.count))) in
    let rec walk lo cum = function
      | [] -> s.max
      | (le, n) :: rest ->
        if cum + n >= rank then begin
          let hi = if le = infinity then s.max else Float.min le s.max in
          if n = 0 then Float.min hi s.max
          else if rank - cum = n then Float.min hi s.max
            (* frac = 1: return [hi] directly — [lo +. (hi -. lo)] is
               not always exactly [hi] in floating point, and q = 1.
               must yield the tracked max. *)
          else begin
            let frac = float_of_int (rank - cum) /. float_of_int n in
            Float.min s.max (lo +. ((hi -. lo) *. frac))
          end
        end
        else walk (if le = infinity then lo else le) (cum + n) rest
    in
    walk 0. 0 s.buckets
  end

let name t = t.name
let help t = t.help

let all () =
  Mutex.lock mu;
  let hs = !registered in
  Mutex.unlock mu;
  List.sort (fun a b -> String.compare a.name b.name) hs
