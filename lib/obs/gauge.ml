type t = { name : string; help : string; cell : float Atomic.t }

let registered : t list ref = ref []
let mu = Mutex.create ()

let make ?(help = "") name =
  Mutex.lock mu;
  match List.find_opt (fun g -> String.equal g.name name) !registered with
  | Some g ->
    Mutex.unlock mu;
    g
  | None ->
    let g = { name; help; cell = Atomic.make 0. } in
    registered := g :: !registered;
    Mutex.unlock mu;
    Registry.on_reset (fun () -> Atomic.set g.cell 0.);
    g

let set t v = if Registry.enabled () then Atomic.set t.cell v
let set_int t n = set t (float_of_int n)
let value t = Atomic.get t.cell
let name t = t.name
let help t = t.help

let all () =
  Mutex.lock mu;
  let gs = !registered in
  Mutex.unlock mu;
  List.sort (fun a b -> String.compare a.name b.name) gs
