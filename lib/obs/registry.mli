(** The process-wide on/off switch for all instrumentation.

    Recording sites compile down to one [Atomic.get] branch when the
    registry is disabled (the default), so instrumented hot paths —
    Poseidon permutations, pool chunks — cost nothing measurable in the
    common case. Observability is observation-only by construction:
    nothing in this library feeds back into protocol computation, so
    proofs, certificates and rewards are byte-identical with the
    registry on, off, or toggled mid-run (property-tested in
    [test/t_obs.ml]). *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Runs the thunk with recording on, restoring the previous state
    afterwards (including on exceptions). *)

val reset : unit -> unit
(** Zeroes every registered metric and empties every trace buffer.
    Call it only when no instrumented code is running concurrently;
    a racing increment may survive or vanish (never tear). *)

val on_reset : (unit -> unit) -> unit
(** Used by metric modules to register their reset action. *)
