(** Ordered, human-readable event logs (the harness's narration).

    A thin mutex-protected string log that doubles as a trace source:
    when the registry is enabled, every {!add} also records a
    {!Trace.instant} (category ["event"]), so harness narration shows
    up on the Chrome-trace timeline alongside the spans it explains.
    Unlike metrics, an [Events.t] always records — the log is the
    harness's functional output, not an optional observation. *)

type t

val create : unit -> t

val add : t -> string -> unit

val addf : t -> ('a, unit, string, unit) format4 -> 'a
(** printf-style {!add}. *)

val items : t -> string list
(** Oldest first (the order [Harness.dump_log] has always promised). *)

val newest_first : t -> string list
(** The raw internal order (the old [Harness.t.log] field exposed
    newest-first; kept for bug-compatibility). *)

val length : t -> int
