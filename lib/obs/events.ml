type t = { mutable entries : string list (* newest first *); mu : Mutex.t }

let create () = { entries = []; mu = Mutex.create () }

let add t s =
  Mutex.lock t.mu;
  t.entries <- s :: t.entries;
  Mutex.unlock t.mu;
  Trace.instant ~cat:"event" s

let addf t fmt = Printf.ksprintf (add t) fmt

let newest_first t =
  Mutex.lock t.mu;
  let es = t.entries in
  Mutex.unlock t.mu;
  es

let items t = List.rev (newest_first t)
let length t = List.length (newest_first t)
