(* zendoo-cli: drive the simulation from the command line.

   Subcommands:
     simulate        run a mainchain+sidechain world and print the event log
     schedule        print a withdrawal-epoch schedule (Fig. 3)
     keys            compile the Latus circuit family and show what a
                     sidechain registers with the mainchain
     prove           prove one epoch's steps on a multicore Domain pool
                     (§5.4.1) and print the measured stats
     chaos           run the world under a deterministic fault plan
                     (Zen_sim.Faults) and print a replayable log
     soak            drive the deterministic workload engine
                     (Zen_sim.Workload) against the batched state layer
                     and print throughput *)

open Cmdliner
open Zen_crypto
open Zen_latus
open Zendoo

(* --domains: 0 means "ask the hardware". *)
let resolve_domains d = if d <= 0 then Pool.recommended_domains () else d

(* ---- observability plumbing ----

   [--metrics] prints the human summary on stdout after the run;
   [--trace-out FILE] writes the Chrome trace; [--report FILE] writes
   the zen-report/1 analysis (critical path, self times, quantiles)
   and prints its human rendering. Any one switches the registry on for
   the whole run; with none, recording stays a single disabled-branch
   per site. *)

(* Extra top-level fields for the zen-report/1 document — the command
   body fills this in before returning (worker costs, scoreboard). *)
let report_extras : (string * Zen_obs.Json.t) list ref = ref []

let with_obs ~metrics ~trace_out ~report f =
  let wanted = metrics || trace_out <> None || report <> None in
  if wanted then Zen_obs.Registry.enable ();
  let code = f () in
  if wanted then begin
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Zen_obs.Export.chrome_trace ());
        close_out oc;
        Printf.eprintf
          "trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n"
          path)
      trace_out;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (Zen_obs.Report.to_json_string ~extras:!report_extras ());
        output_char oc '\n';
        close_out oc;
        print_string (Zen_obs.Report.human ());
        Printf.eprintf "report written to %s (zen-report/1)\n" path)
      report;
    if metrics then print_string (Zen_obs.Export.summary ())
  end;
  code

(* ---- simulate ---- *)

(* Register [n] Latus sidechains sharing one compiled circuit family
   (the single sidechain keeps its historical name "sc"). *)
let register_sidechains h ~n ~family ~epoch_len ~submit_len =
  let name i = if n = 1 then "sc" else Printf.sprintf "sc%d" i in
  let rec go i acc =
    if i > n then Ok (List.rev acc)
    else
      match
        Zen_sim.Harness.add_latus h ~name:(name i) ~family ~epoch_len
          ~submit_len ~activation_delay:1 ()
      with
      | Error e -> Error e
      | Ok sc -> go (i + 1) (sc :: acc)
  in
  go 1 []

(* --workload PROFILE: parse early so a bad profile fails before any
   setup; attach after registration so the driver sees every
   sidechain. *)
let parse_workload = function
  | None -> Ok None
  | Some s -> Result.map Option.some (Zen_sim.Workload.of_string s)

let attach_workload h ~workload ~seed =
  match workload with
  | None -> Ok ()
  | Some profile -> Zen_sim.Harness.set_workload h ~profile ~seed

let simulate seed ticks epoch_len submit_len fts withhold sidechains domains
    aggregate no_pipeline workload no_cache no_template_cache metrics trace_out
    report =
  with_obs ~metrics ~trace_out ~report @@ fun () ->
  Circuits.set_use_templates (not no_template_cache);
  if sidechains < 1 then begin
    Printf.eprintf "error: --sidechains must be at least 1\n";
    1
  end
  else begin
    match parse_workload workload with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok workload ->
    Verifier.Cache.set_enabled (not no_cache);
    (* The process-wide persistent pool: spawned once, reused by every
       operation in the run, joined by the registry's at_exit hook. *)
    let pool = Pool.get ~domains:(resolve_domains domains) in
    let h =
      Zen_sim.Harness.create ~pool ~aggregate ~pipeline:(not no_pipeline) ~seed
        ()
    in
    Zen_sim.Harness.fund h ~blocks:5;
    let family = Circuits.make Params.default in
    match register_sidechains h ~n:sidechains ~family ~epoch_len ~submit_len with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok scs ->
      List.iter (fun sc -> sc.Zen_sim.Harness.withhold_certs <- withhold) scs;
      let first = List.hd scs in
      let user = Sc_wallet.create ~seed:(seed ^ ".user") in
      let user_addr = Sc_wallet.fresh_address user in
      for i = 1 to fts do
        match
          Zen_sim.Harness.forward_transfer h first ~receiver:user_addr
            ~payback:user_addr
            ~amount:(Amount.of_int_exn (i * 1_000_000))
        with
        | Ok () -> ()
        | Error e -> Zen_sim.Harness.logf h "ft failed: %s" e
      done;
      (* the string seed folds to a deterministic workload seed *)
      let wseed =
        String.fold_left
          (fun a c -> ((a * 131) + Char.code c) land max_int)
          7 seed
      in
      (match attach_workload h ~workload ~seed:wseed with
      | Ok () -> ()
      | Error e -> Zen_sim.Harness.logf h "workload attach failed: %s" e);
      Zen_sim.Harness.tick_n h ticks;
      List.iter print_endline (Zen_sim.Harness.dump_log h);
      print_newline ();
      List.iter
        (fun sc ->
          Printf.printf
            "final %s: MC height %d | SC height %d | balance-on-MC %s | \
             ceased %b | certified epochs [%s]\n"
            sc.Zen_sim.Harness.name
            (Zen_mainchain.Chain.height h.chain)
            (Node.sc_height sc.Zen_sim.Harness.node)
            (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h sc))
            (Zen_sim.Harness.is_ceased h sc)
            (String.concat ";"
               (List.map string_of_int
                  (Node.certified_epochs sc.Zen_sim.Harness.node))))
        scs;
      if workload <> None then
        Printf.printf "workload injected %d txs\n"
          (Zen_sim.Harness.workload_injected h);
      let st = Verifier.Cache.stats () in
      Printf.printf "verify cache: %d hits | %d misses | enabled %b\n"
        st.Verifier.Cache.hits st.Verifier.Cache.misses
        (Verifier.Cache.enabled ());
      report_extras := [ ("scoreboard", Zen_sim.Harness.scoreboard_json h) ];
      0
  end

(* ---- schedule ---- *)

let schedule start epoch_len submit_len epochs =
  let s = { Epoch.start_block = start; epoch_len; submit_len } in
  Printf.printf "%-6s %-16s %-16s %s\n" "epoch" "MC heights" "cert window"
    "ceased if no cert by";
  for e = 0 to epochs - 1 do
    let lo, hi = Epoch.submission_window s ~epoch:e in
    Printf.printf "%-6d %-16s %-16s %d\n" e
      (Printf.sprintf "%d..%d"
         (Epoch.first_height s ~epoch:e)
         (Epoch.last_height s ~epoch:e))
      (Printf.sprintf "%d..%d" lo hi)
      (hi + 1);
  done;
  0

(* ---- keys ---- *)

let keys mst_depth =
  let params = { Params.default with mst_depth } in
  match Params.validate params with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok () ->
    let family = Circuits.make params in
    let show what (k : Circuits.keys) =
      Printf.printf "%-12s vk=%s  %6d constraints\n" what
        (Hash.to_hex (Zen_snark.Backend.vk_digest k.vk))
        k.constraints
    in
    Printf.printf "Latus circuit family (MST depth %d)\n\n" mst_depth;
    Printf.printf "registered with the mainchain at sidechain creation:\n";
    show "wcert_vk" (Circuits.wcert_keys family);
    show "btr/csw_vk" (Circuits.ownership_keys family);
    Printf.printf "\ninternal base circuits (leaves of the recursion):\n";
    List.iter
      (fun vk ->
        Printf.printf "%-12s vk=%s\n" "base"
          (Hash.to_hex (Zen_snark.Backend.vk_digest vk)))
      (Circuits.base_vks family);
    0

(* ---- prove ---- *)

let prove steps domains workers mst_depth seed no_pipeline no_template_cache
    metrics trace_out report =
  with_obs ~metrics ~trace_out ~report @@ fun () ->
  Circuits.set_use_templates (not no_template_cache);
  let params = { Params.default with mst_depth } in
  if steps < 1 then begin
    Printf.eprintf "error: --steps must be at least 1\n";
    1
  end
  else if workers < 1 then begin
    Printf.eprintf "error: --workers must be at least 1\n";
    1
  end
  else
  match Params.validate params with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok () ->
    let domains = resolve_domains domains in
    let family = Circuits.make params in
    let rsys =
      Zen_snark.Recursive.create ~name:"cli"
        ~base_vks:(Circuits.base_vks family)
    in
    let st = Sc_state.create params in
    let workload =
      List.init steps (fun i ->
          Sc_tx.Insert
            (Utxo.make
               ~addr:(Hash.of_string "cli-prove")
               ~amount:(Amount.of_int_exn (i + 1))
               ~nonce:(Hash.of_string (Printf.sprintf "cli-%d-%d" seed i))))
    in
    let pool = Pool.get ~domains in
    let t0 = Unix.gettimeofday () in
    (* Both paths print the same fields from the same data: the proof
       digest line is byte-identical with or without --no-pipeline (CI
       compares the two). *)
    let outcome =
      if no_pipeline then
        match
          Prover_pool.prove_epoch ~pool family ~initial:st ~steps:workload
            ~workers ~seed
        with
        | Error e -> Error e
        | Ok (proofs, stats) -> (
          match Prover_pool.merge_all ~pool family rsys proofs with
          | Error e -> Error e
          | Ok top -> Ok (proofs, stats, top))
      else
        Prover_pool.prove_and_merge ~pool family rsys ~initial:st
          ~steps:workload ~workers ~seed
    in
    (match outcome with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok (_proofs, stats, top) ->
        let total = Unix.gettimeofday () -. t0 in
        Printf.printf
          "epoch of %d steps proven on %d domain(s) \
           (recommended on this machine: %d)\n"
          stats.Prover_pool.tasks stats.Prover_pool.domains
          (Pool.recommended_domains ());
        Printf.printf "  task work        %.3f s (sum of per-task wall)\n"
          stats.Prover_pool.total_work;
        Printf.printf "  prove wall       %.3f s (avg concurrency %.2f)\n"
          stats.Prover_pool.wall stats.Prover_pool.concurrency;
        Printf.printf "  prove+merge wall %.3f s\n" total;
        Printf.printf "  epoch proof      depth %d, %d base proofs, %d B, verifies %b\n"
          (Zen_snark.Recursive.depth top)
          (Zen_snark.Recursive.base_count top)
          (Zen_snark.Recursive.proof_size_bytes top)
          (Zen_snark.Recursive.verify rsys top);
        Printf.printf "  proof digest     %s\n"
          (Hash.to_hex
             (Hash.of_string
                (Zen_snark.Backend.proof_encode
                   (Zen_snark.Recursive.final_proof top))));
        Printf.printf "  rewards          %s\n"
          (String.concat " "
             (List.map
                (fun (w, r) -> Printf.sprintf "w%d:%d" w r)
                stats.Prover_pool.rewards));
        report_extras :=
          [ ("workers", Prover_pool.worker_costs_json stats) ];
        0)

(* ---- chaos ---- *)

(* Everything printed here (and written to --log-out) is a pure
   function of (seed, plan): no wall-clock values, no machine state.
   CI runs the command twice and byte-compares the logs. *)
let chaos seed ticks epoch_len submit_len fts sidechains domains aggregate
    no_pipeline workload intensity plan_str log_out no_template_cache metrics
    trace_out report =
  with_obs ~metrics ~trace_out ~report @@ fun () ->
  Circuits.set_use_templates (not no_template_cache);
  if sidechains < 1 then begin
    Printf.eprintf "error: --sidechains must be at least 1\n";
    1
  end
  else
  match parse_workload workload with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok workload ->
  let plan_result =
    match plan_str with
    | Some s -> Zen_sim.Faults.plan_of_string s
    | None ->
      (* Setup consumes 5 funding rounds, one creation round per
         sidechain and one round per FT before tick_n starts; aim the
         storm's tick faults at the live window. *)
      Ok
        (Zen_sim.Faults.storm ~seed
           ~first_tick:(6 + sidechains + fts)
           ~ticks
           ~epochs:(max 1 (ticks / epoch_len))
           ~workers:4 ~intensity ())
  in
  match plan_result with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok plan -> (
    let faults = Zen_sim.Faults.create ~seed plan in
    let pool = Pool.get ~domains:(resolve_domains domains) in
    let h =
      Zen_sim.Harness.create ~pool ~aggregate ~pipeline:(not no_pipeline)
        ~faults
        ~seed:(Printf.sprintf "chaos.%d" seed) ()
    in
    Zen_sim.Harness.fund h ~blocks:5;
    let family = Circuits.make Params.default in
    match register_sidechains h ~n:sidechains ~family ~epoch_len ~submit_len with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok scs ->
      let sc = List.hd scs in
      let user = Sc_wallet.create ~seed:(Printf.sprintf "chaos.%d.user" seed) in
      let user_addr = Sc_wallet.fresh_address user in
      for i = 1 to fts do
        match
          Zen_sim.Harness.forward_transfer h sc ~receiver:user_addr
            ~payback:user_addr
            ~amount:(Amount.of_int_exn (i * 1_000_000))
        with
        | Ok () -> ()
        | Error e -> Zen_sim.Harness.logf h "ft failed: %s" e
      done;
      (match attach_workload h ~workload ~seed with
      | Ok () -> ()
      | Error e -> Zen_sim.Harness.logf h "workload attach failed: %s" e);
      Zen_sim.Harness.tick_n h ticks;
      (* A small §5.4.1 proving episode under the plan's epoch-0 worker
         faults, digest-compared against the fault-free run: crashes
         must change scheduling, never proof bytes. *)
      let episode fl =
        let st = Sc_state.create Params.default in
        let workload =
          List.init 8 (fun i ->
              Sc_tx.Insert
                (Utxo.make
                   ~addr:(Hash.of_string "chaos-prove")
                   ~amount:(Amount.of_int_exn (i + 1))
                   ~nonce:(Hash.of_string (Printf.sprintf "chaos-%d-%d" seed i))))
        in
        Prover_pool.prove_epoch ~faults:fl family ~initial:st ~steps:workload
          ~workers:4 ~seed
      in
      let digest proofs =
        Hash.to_hex
          (Hash.of_string
             (String.concat ""
                (List.map
                   (fun tp ->
                     Zen_snark.Backend.proof_encode tp.Prover_pool.proof)
                   proofs)))
      in
      let worker_faults =
        (* first epoch of the plan with prover faults, so the episode
           actually exercises them when the plan has any *)
        let rec first e =
          if e > 64 then []
          else
            match Zen_sim.Faults.prover_faults faults ~epoch:e with
            | [] -> first (e + 1)
            | l -> l
        in
        first 0
      in
      let retries, identical =
        match (episode worker_faults, episode []) with
        | Ok (faulted, stats), Ok (clean, _) ->
          (stats.Prover_pool.retries, digest faulted = digest clean)
        | Error _, _ | _, Error _ -> (-1, false)
      in
      (* Certified epochs summed over every sidechain; "ceased" is true
         when any sidechain ceased (for one sidechain both reduce to
         the historical single-chain meaning). *)
      let certified =
        let state = Zen_mainchain.Chain.tip_state h.chain in
        List.fold_left
          (fun acc (sc : Zen_sim.Harness.sidechain) ->
            match Zen_mainchain.Sc_ledger.find state.scs sc.ledger_id with
            | None -> acc
            | Some s -> acc + List.length s.Zen_mainchain.Sc_ledger.certs)
          0 scs
      in
      let any_ceased =
        List.exists (fun sc -> Zen_sim.Harness.is_ceased h sc) scs
      in
      let buf = Buffer.create 4096 in
      let outf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      outf "seed %d\n" seed;
      outf "plan %s\n" (Zen_sim.Faults.plan_to_string plan);
      List.iter (fun l -> outf "%s\n" l) (Zen_sim.Harness.dump_log h);
      if workload <> None then
        outf "workload injected %d txs\n" (Zen_sim.Harness.workload_injected h);
      outf
        "chaos: %d faults injected | %d epochs certified | ceased %b | MC \
         height %d | prover retries %d | proof identical %b\n"
        (Zen_sim.Faults.injected faults)
        certified any_ceased
        (Zen_mainchain.Chain.height h.chain)
        retries identical;
      print_string (Buffer.contents buf);
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Buffer.contents buf);
          close_out oc)
        log_out;
      report_extras := [ ("scoreboard", Zen_sim.Harness.scoreboard_json h) ];
      0)

(* ---- soak ---- *)

(* Run the Zen_sim.Workload engine standalone: hundreds of thousands
   of state transitions per simulated epoch against the batched state
   layer, no SNARKs in the loop. Everything written to --log-out is a
   pure function of (seed, profile, switches-that-don't-matter): CI
   replays the command and byte-compares, and also compares
   --no-batch / --no-snapshots logs against the default run. Perf
   numbers (wall clock, throughput, heap) go to stdout only. *)
let soak profile_str seed no_batch no_snapshots _no_pipeline log_out metrics
    trace_out
    report =
  with_obs ~metrics ~trace_out ~report @@ fun () ->
  match Zen_sim.Workload.of_string profile_str with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok profile -> (
    let buf = Buffer.create 4096 in
    let log line =
      Buffer.add_string buf line;
      Buffer.add_char buf '\n'
    in
    match
      Zen_sim.Workload.run ~batched:(not no_batch)
        ~snapshots:(not no_snapshots) ~log ~seed profile
    with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok stats ->
      print_string (Buffer.contents buf);
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Buffer.contents buf);
          close_out oc)
        log_out;
      (* Not in the log: wall clock and heap vary run to run. *)
      Printf.printf
        "soak %s: %d txs in %.2f s (%.0f tx/s) | peak heap %d words | \
         batched %b | snapshots %b\n"
        (Zen_sim.Workload.to_string stats.Zen_sim.Workload.profile)
        stats.Zen_sim.Workload.applied stats.Zen_sim.Workload.wall_s
        (float_of_int stats.Zen_sim.Workload.applied
        /. Float.max 1e-9 stats.Zen_sim.Workload.wall_s)
        stats.Zen_sim.Workload.peak_words (not no_batch) (not no_snapshots);
      0)

(* ---- cmdliner wiring ---- *)

let workload_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload" ] ~docv:"PROFILE"
        ~doc:
          "Attach a deterministic traffic driver: each tick submits \
           profile-mixed transactions (payments, FTs, BTs) to every \
           sidechain node behind a diurnal gate. PROFILE is a builtin \
           ($(b,smoke), $(b,steady), $(b,soak)) or the custom \
           $(b,u..:z..:t..:e..:p..:b..:m..-..-..-..:d..:s..:r..) syntax.")

let seed_t =
  Arg.(value & opt string "cli" & info [ "seed" ] ~doc:"Deterministic seed.")

let domains_t =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:
          "Worker domains for proving (1 = sequential, 0 = use \
           Domain.recommended_domain_count). Results are bit-identical \
           for every value.")

let sidechains_t =
  Arg.(
    value & opt int 1
    & info [ "sidechains" ]
        ~doc:
          "Number of Latus sidechains to register (all sharing one \
           compiled circuit family). Every tick forges and certifies \
           each of them against the same mainchain.")

let aggregate_t =
  Arg.(
    value & flag
    & info [ "aggregate" ]
        ~doc:
          "Fold each mined block's certificate proofs into one recursive \
           aggregate proof, so block validation verifies a single proof \
           regardless of sidechain count. Decisions and logs are identical \
           either way.")

let no_pipeline_t =
  Arg.(
    value & flag
    & info [ "no-pipeline" ]
        ~doc:
          "Disable pipelined epoch proving: prove every transition \
           synchronously on the forge path and fold the whole epoch's \
           merge tree at certify time (the pre-pipeline behaviour). \
           Certificates, decisions and logs are byte-identical either \
           way; only latency moves.")

let no_cache_t =
  Arg.(
    value & flag
    & info [ "no-verify-cache" ]
        ~doc:
          "Disable the mainchain verification cache (every duplicate \
           submission, mempool re-check and reorg replay re-runs SNARK \
           verification). Decisions are identical either way.")

let no_template_cache_t =
  Arg.(
    value & flag
    & info [ "no-template-cache" ]
        ~doc:
          "Disable compile-once circuit templates (every prove \
           re-synthesizes and re-digests its circuit before proving). \
           Proof bytes are identical either way.")

let metrics_t =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Record metrics during the run and print a summary at exit.")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the run (open in \
           chrome://tracing or ui.perfetto.dev).")

let report_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write a zen-report/1 JSON analysis of the run — critical path, \
           per-span self times, latency percentiles, worker costs and (for \
           world runs) the certificate scoreboard — and print its human \
           rendering.")

let simulate_cmd =
  let ticks =
    Arg.(value & opt int 16 & info [ "ticks" ] ~doc:"Simulation rounds.")
  in
  let epoch_len =
    Arg.(value & opt int 4 & info [ "epoch-len" ] ~doc:"Withdrawal epoch length.")
  in
  let submit_len =
    Arg.(value & opt int 2 & info [ "submit-len" ] ~doc:"Certificate window.")
  in
  let fts =
    Arg.(value & opt int 2 & info [ "fts" ] ~doc:"Forward transfers to inject.")
  in
  let withhold =
    Arg.(value & flag & info [ "withhold" ] ~doc:"Withhold certificates (drive ceasing).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a mainchain + Latus sidechain world")
    Term.(
      const simulate $ seed_t $ ticks $ epoch_len $ submit_len $ fts $ withhold
      $ sidechains_t $ domains_t $ aggregate_t $ no_pipeline_t $ workload_t
      $ no_cache_t $ no_template_cache_t $ metrics_t $ trace_out_t $ report_t)

let schedule_cmd =
  let start = Arg.(value & opt int 100 & info [ "start" ] ~doc:"Activation height.") in
  let epoch_len = Arg.(value & opt int 10 & info [ "epoch-len" ] ~doc:"Epoch length.") in
  let submit_len = Arg.(value & opt int 3 & info [ "submit-len" ] ~doc:"Window length.") in
  let epochs = Arg.(value & opt int 5 & info [ "epochs" ] ~doc:"Epochs to print.") in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Print a withdrawal-epoch schedule (Fig. 3)")
    Term.(const schedule $ start $ epoch_len $ submit_len $ epochs)

let keys_cmd =
  let depth = Arg.(value & opt int 12 & info [ "mst-depth" ] ~doc:"MST depth.") in
  Cmd.v
    (Cmd.info "keys" ~doc:"Compile the Latus circuits and print registration keys")
    Term.(const keys $ depth)

let prove_cmd =
  let steps =
    Arg.(value & opt int 32 & info [ "steps" ] ~doc:"Transitions in the epoch.")
  in
  let depth = Arg.(value & opt int 12 & info [ "mst-depth" ] ~doc:"MST depth.") in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ]
          ~doc:
            "Incentive-layer parties tasks are dispatched to (§5.4.1) — \
             independent of $(b,--domains), which is hardware parallelism.")
  in
  let seed =
    Arg.(value & opt int 77 & info [ "seed" ] ~doc:"Dispatch seed (§5.4.1).")
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Prove one epoch on a multicore Domain pool and print measured \
          wall-clock stats")
    Term.(
      const prove $ steps $ domains_t $ workers $ depth $ seed $ no_pipeline_t
      $ no_template_cache_t $ metrics_t $ trace_out_t $ report_t)

let chaos_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Storm seed; with --plan, only labels the run.")
  in
  let ticks =
    Arg.(value & opt int 24 & info [ "ticks" ] ~doc:"Simulation rounds.")
  in
  let epoch_len =
    Arg.(
      value & opt int 4 & info [ "epoch-len" ] ~doc:"Withdrawal epoch length.")
  in
  let submit_len =
    Arg.(
      value & opt int 5
      & info [ "submit-len" ]
          ~doc:
            "Certificate window. The default overlaps consecutive windows \
             (submit-len > epoch-len), exercising sequential certification, \
             and tolerates reorgs up to the epoch length.")
  in
  let fts =
    Arg.(value & opt int 2 & info [ "fts" ] ~doc:"Forward transfers to inject.")
  in
  let intensity =
    Arg.(
      value & opt int 25
      & info [ "intensity" ]
          ~doc:"Storm fault probability in percent (0 = no faults).")
  in
  let plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Explicit fault plan (e.g. \
             $(b,crash@0:w1,delay@1:+2,reorg@9:d2,skew@5:+120ms)) instead of \
             a seed-derived storm.")
  in
  let log_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-out" ] ~docv:"FILE"
          ~doc:
            "Also write the replayable run log to FILE (byte-identical for \
             the same seed and plan).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the world under a deterministic fault plan and print a \
          replayable log")
    Term.(
      const chaos $ seed $ ticks $ epoch_len $ submit_len $ fts $ sidechains_t
      $ domains_t $ aggregate_t $ no_pipeline_t $ workload_t $ intensity $ plan
      $ log_out $ no_template_cache_t $ metrics_t $ trace_out_t $ report_t)

let soak_cmd =
  let profile =
    Arg.(
      value & opt string "smoke"
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:
            "Workload profile: $(b,smoke), $(b,steady), $(b,soak) or the \
             custom syntax printed by replays.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.")
  in
  let no_batch =
    Arg.(
      value & flag
      & info [ "no-batch" ]
          ~doc:
            "Commit each phase with per-key MST updates instead of the \
             merged-traversal batch path. Logs and digest are identical \
             either way; only the wall clock moves.")
  in
  let no_snapshots =
    Arg.(
      value & flag
      & info [ "no-snapshots" ]
          ~doc:
            "Roll reorgs back by replaying the epoch instead of restoring \
             an O(1) copy-on-write checkpoint. Logs and digest are \
             identical either way.")
  in
  let no_pipeline =
    Arg.(
      value & flag
      & info [ "no-pipeline" ]
          ~doc:
            "Accepted for symmetry with $(b,simulate)/$(b,chaos): the \
             state-layer soak does no proving, so the flag changes nothing. \
             Logs and digest are identical either way.")
  in
  let log_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-out" ] ~docv:"FILE"
          ~doc:
            "Also write the replayable run log to FILE (byte-identical for \
             the same seed and profile, whatever the switches).")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Drive the deterministic workload engine against the batched \
          state layer and print throughput")
    Term.(
      const soak $ profile $ seed $ no_batch $ no_snapshots $ no_pipeline
      $ log_out $ metrics_t $ trace_out_t $ report_t)

let () =
  let doc = "Zendoo cross-chain transfer protocol simulator" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "zendoo-cli" ~doc)
          [ simulate_cmd; schedule_cmd; keys_cmd; prove_cmd; chaos_cmd;
            soak_cmd ]))
